package workload

import (
	"math"
	"strings"
	"testing"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
)

func shardScenarios(n, tasks int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		cfg := ior.PaperConfig(tasks)
		cfg.Label = "shard-job"
		cfg.SegmentCount = 2
		cfg.Reps = 1
		out[i] = NewScenario("shard", Job{Workload: IORJob{Cfg: cfg}})
	}
	return out
}

func TestRunShardedBasics(t *testing.T) {
	plat := cluster.Cab()
	res, err := RunSharded(plat, shardScenarios(3, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 3 {
		t.Fatalf("got %d shard results", len(res.Shards))
	}
	for i, sh := range res.Shards {
		if len(sh.Jobs) != 1 || sh.Jobs[0].WriteMBs() <= 0 {
			t.Fatalf("shard %d result malformed", i)
		}
		if sh.Makespan <= 0 || sh.Makespan > res.Makespan {
			t.Fatalf("shard %d makespan %v outside total %v", i, sh.Makespan, res.Makespan)
		}
	}
	if res.Solver.ComponentsSolved == 0 {
		t.Error("shared solver counters not collected")
	}
	agg := res.Aggregate()
	if agg.TotalMBs <= 0 || agg.MinMBs > agg.MaxMBs {
		t.Errorf("aggregate malformed: %+v", agg)
	}
}

// TestRunShardedSolverModesBitIdentical runs the same sharded scenario set
// under the partitioned and the reference solver: every job's bandwidth
// and finish time must match bit for bit.
func TestRunShardedSolverModesBitIdentical(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(4, 8)
	results := map[bool]*ShardedResult{}
	for _, reference := range []bool{false, true} {
		var err error
		results[reference], err = RunSharded(plat, shards, 0, func(i int, sys *lustre.System) {
			if i == 0 {
				sys.Net().UseReferenceSolver(reference)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inc, ref := results[false], results[true]
	if math.Float64bits(inc.Makespan) != math.Float64bits(ref.Makespan) {
		t.Fatalf("makespan diverged: %v vs %v", inc.Makespan, ref.Makespan)
	}
	for i := range inc.Shards {
		for j := range inc.Shards[i].Jobs {
			a, b := inc.Shards[i].Jobs[j], ref.Shards[i].Jobs[j]
			if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
				t.Errorf("shard %d job %d finish diverged: %v vs %v", i, j, a.FinishedAt, b.FinishedAt)
			}
			if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
				t.Errorf("shard %d job %d bandwidth diverged: %v vs %v", i, j, a.WriteMBs(), b.WriteMBs())
			}
		}
	}
	// The partitioned solver must have scanned per-shard populations: the
	// average component solve touches far fewer flows than the reference's
	// whole-population passes.
	incPer := float64(inc.Solver.ComponentFlowsScanned) / float64(inc.Solver.ComponentsSolved)
	refPer := float64(ref.Solver.ComponentFlowsScanned) / float64(ref.Solver.ComponentsSolved)
	if incPer*2 > refPer {
		t.Errorf("per-solve scan %.1f not well below reference %.1f", incPer, refPer)
	}
}

// TestRunShardedShardsAreIsolated: a shard's result must be independent of
// its neighbours — the same scenario alone or next to a heavy neighbour
// yields identical virtual-time behaviour, since shards share no links.
func TestRunShardedShardsAreIsolated(t *testing.T) {
	plat := cluster.Cab()
	alone, err := RunSharded(plat, shardScenarios(1, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	heavy := ior.PaperConfig(64)
	heavy.Label = "heavy"
	heavy.SegmentCount = 4
	heavy.Reps = 1
	both, err := RunSharded(plat, []Scenario{
		shardScenarios(1, 16)[0],
		NewScenario("noise", Job{Workload: IORJob{Cfg: heavy}}),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := alone.Shards[0].Jobs[0], both.Shards[0].Jobs[0]
	if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
		t.Errorf("neighbour changed shard 0 finish: %v vs %v", a.FinishedAt, b.FinishedAt)
	}
	if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
		t.Errorf("neighbour changed shard 0 bandwidth: %v vs %v", a.WriteMBs(), b.WriteMBs())
	}
}

func TestRunShardedErrors(t *testing.T) {
	plat := cluster.Cab()
	if _, err := RunSharded(plat, nil, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	bad := Scenario{Name: "bad", Jobs: []Job{{}}}
	if _, err := RunSharded(plat, []Scenario{bad}, 0); err == nil || !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("bad shard error = %v, want shard-indexed error", err)
	}
}

func TestRunShardedDeterministicForSeed(t *testing.T) {
	plat := cluster.Cab()
	shards := shardScenarios(2, 8)
	r1, err := RunSharded(plat, shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSharded(plat, shards, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Makespan) != math.Float64bits(r2.Makespan) {
		t.Fatalf("same seed diverged: %v vs %v", r1.Makespan, r2.Makespan)
	}
	r3, err := RunSharded(plat, shards, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r3.Makespan {
		t.Error("different seed produced identical makespan (suspicious)")
	}
}
