// Package workload models the applications that motivate the paper:
// long-running simulations that periodically checkpoint their state to the
// parallel file system to survive node failures. It provides a
// compute/checkpoint cycle model, optimal-interval analysis (Young's
// approximation), and a multi-tenant job generator for contention studies
// beyond the paper's fixed four-job scenario.
package workload

import (
	"fmt"
	"math"

	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/stats"
)

// Checkpoint describes a periodic checkpointing application.
type Checkpoint struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// StateMBPerRank is the checkpoint volume each rank owns.
	StateMBPerRank float64
	// ComputeSeconds is the useful compute time between checkpoints.
	ComputeSeconds float64
	// MTBFSeconds is the machine's mean time between failures.
	MTBFSeconds float64
}

// TotalStateMB is the volume of one checkpoint.
func (c Checkpoint) TotalStateMB() float64 {
	return c.StateMBPerRank * float64(c.Ranks)
}

// WriteSeconds is the duration of one checkpoint at the given file system
// bandwidth.
func (c Checkpoint) WriteSeconds(mbs float64) float64 {
	if mbs <= 0 {
		return math.Inf(1)
	}
	return c.TotalStateMB() / mbs
}

// Efficiency is the fraction of wall-clock time spent computing when
// checkpointing every ComputeSeconds at bandwidth mbs, ignoring failures:
// compute / (compute + write).
func (c Checkpoint) Efficiency(mbs float64) float64 {
	w := c.WriteSeconds(mbs)
	return c.ComputeSeconds / (c.ComputeSeconds + w)
}

// YoungInterval returns Young's approximation of the optimal checkpoint
// interval: sqrt(2 * writeTime * MTBF). Faster checkpoints (higher
// bandwidth) permit shorter intervals and lose less work per failure —
// the link between the paper's I/O tuning and application throughput.
func (c Checkpoint) YoungInterval(mbs float64) float64 {
	w := c.WriteSeconds(mbs)
	if math.IsInf(w, 1) || c.MTBFSeconds <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * w * c.MTBFSeconds)
}

// GoodputFraction estimates the fraction of time spent on useful work when
// checkpointing at Young's interval with failures of rate 1/MTBF: each
// cycle spends interval+write time, delivers interval of work, and each
// failure wastes half an interval plus a restart (one write time).
func (c Checkpoint) GoodputFraction(mbs float64) float64 {
	w := c.WriteSeconds(mbs)
	if math.IsInf(w, 1) {
		return 0
	}
	tau := c.YoungInterval(mbs)
	if math.IsInf(tau, 1) {
		// No failures: pure compute/write duty cycle at the configured
		// interval.
		return c.ComputeSeconds / (c.ComputeSeconds + w)
	}
	cycle := tau + w
	// Expected loss per unit time from failures: (tau/2 + w) / MTBF.
	lossRate := (tau/2 + w) / c.MTBFSeconds
	gross := tau / cycle
	net := gross * (1 - lossRate)
	if net < 0 {
		return 0
	}
	return net
}

// IORConfig converts the checkpoint into an equivalent IOR workload: one
// segment holding the rank's state, written collectively.
func (c Checkpoint) IORConfig(api mpiio.Driver, hints mpiio.Hints) ior.Config {
	return ior.Config{
		Label:          fmt.Sprintf("checkpoint-%d", c.Ranks),
		API:            api,
		BlockSizeMB:    c.StateMBPerRank,
		TransferSizeMB: math.Min(1, c.StateMBPerRank),
		SegmentCount:   1,
		NumTasks:       c.Ranks,
		WriteFile:      true,
		Collective:     true,
		Hints:          hints,
		Reps:           1,
	}
}

// JobMix generates heterogeneous concurrent I/O jobs for contention
// studies: job i requests Requests[i] stripes with Tasks[i] ranks.
type JobMix struct {
	Tasks    []int
	Requests []int
	SizesMB  []float64
}

// Uniform returns a mix of n identical jobs — the paper's scenario.
func Uniform(n, tasks, request int, sizeMB float64) JobMix {
	m := JobMix{}
	for i := 0; i < n; i++ {
		m.Tasks = append(m.Tasks, tasks)
		m.Requests = append(m.Requests, request)
		m.SizesMB = append(m.SizesMB, sizeMB)
	}
	return m
}

// Random draws n jobs with stripe requests and scales sampled from the
// given candidate sets — a synthetic "average day" on a shared machine.
func Random(rng *stats.RNG, n int, taskChoices, requestChoices []int, sizeMB float64) JobMix {
	m := JobMix{}
	for i := 0; i < n; i++ {
		m.Tasks = append(m.Tasks, taskChoices[rng.IntN(len(taskChoices))])
		m.Requests = append(m.Requests, requestChoices[rng.IntN(len(requestChoices))])
		m.SizesMB = append(m.SizesMB, sizeMB)
	}
	return m
}

// Len returns the number of jobs in the mix.
func (m JobMix) Len() int { return len(m.Tasks) }

// Validate reports the first inconsistency.
func (m JobMix) Validate() error {
	if len(m.Tasks) != len(m.Requests) || len(m.Tasks) != len(m.SizesMB) {
		return fmt.Errorf("workload: ragged job mix")
	}
	for i := range m.Tasks {
		if m.Tasks[i] <= 0 || m.Requests[i] <= 0 || m.SizesMB[i] <= 0 {
			return fmt.Errorf("workload: job %d has non-positive parameters", i)
		}
	}
	return nil
}

// Configs materialises the mix as IOR configurations on disjoint node
// ranges.
func (m JobMix) Configs(coresPerNode int) ([]ior.Config, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var out []ior.Config
	node := 0
	for i := range m.Tasks {
		cfg := ior.PaperConfig(m.Tasks[i])
		cfg.Label = fmt.Sprintf("mix-job%d", i)
		cfg.Hints.StripingFactor = m.Requests[i]
		cfg.Hints.StripingUnitMB = m.SizesMB[i]
		cfg.FirstNode = node
		node += (m.Tasks[i] + coresPerNode - 1) / coresPerNode
		out = append(out, cfg)
	}
	return out, nil
}
