package workload

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"pfsim/internal/cluster"
	"pfsim/internal/ior"
	"pfsim/internal/lustre"
)

// dispatchScenario mixes every converted execution path in one scenario:
// a collective write+read job (ad_lustre aggregators, ReadAll), a
// file-per-process job (per-rank communicator splits and private files),
// an independent writer (WriteIndependent), and a PLFS logger (container
// create, per-rank logs, index compaction). Staggered starts keep the
// jobs genuinely contending rather than phase-locked.
func dispatchScenario() Scenario {
	coll := ior.PaperConfig(8)
	coll.Label = "collective"
	coll.SegmentCount = 2
	coll.Reps = 2
	coll.ReadFile = true

	fpp := ior.PaperConfig(8)
	fpp.Label = "fpp"
	fpp.FilePerProc = true
	fpp.SegmentCount = 2
	fpp.Reps = 1

	indep := ior.PaperConfig(8)
	indep.Label = "independent"
	indep.Collective = false
	indep.SegmentCount = 2
	indep.Reps = 1

	return NewScenario("dispatch",
		Job{Workload: IORJob{Cfg: coll}},
		Job{Workload: IORJob{Cfg: fpp}, StartAt: 0.5},
		Job{Workload: IORJob{Cfg: indep}, StartAt: 1},
		Job{Workload: PLFSLogger{Ranks: 8, MBPerRank: 64, TransferMB: 8}, StartAt: 0.25},
	)
}

// TestDispatchModesBitIdentical is the tentpole property test: inline task
// dispatch (the default) and the goroutine-backed Proc shim must produce
// byte-identical simulations — every job's trajectory, every bandwidth
// sample, every OST layout, and the solver's deterministic work counters —
// across both solver modes and several solve-parallelism widths. Run under
// -race in CI, this also proves the task path introduces no new sharing.
func TestDispatchModesBitIdentical(t *testing.T) {
	plat := cluster.Cab()
	sc := dispatchScenario()
	run := func(shim, reference bool, par int) *Result {
		res, err := RunScenarioWith(plat, sc,
			RunOptions{Parallelism: par, UseProcShim: shim},
			func(sys *lustre.System) { sys.Net().UseReferenceSolver(reference) })
		if err != nil {
			t.Fatalf("shim=%v reference=%v par=%d: %v", shim, reference, par, err)
		}
		return res
	}
	for _, reference := range []bool{false, true} {
		for _, par := range []int{1, 2, 4} {
			tasks := run(false, reference, par)
			shim := run(true, reference, par)
			if math.Float64bits(tasks.Makespan) != math.Float64bits(shim.Makespan) {
				t.Errorf("reference=%v par=%d: makespan %v (tasks) vs %v (shim)",
					reference, par, tasks.Makespan, shim.Makespan)
			}
			for j := range tasks.Jobs {
				a, b := &tasks.Jobs[j], &shim.Jobs[j]
				if math.Float64bits(a.FinishedAt) != math.Float64bits(b.FinishedAt) {
					t.Errorf("reference=%v par=%d job %q: finish %v (tasks) vs %v (shim)",
						reference, par, a.Label, a.FinishedAt, b.FinishedAt)
				}
				if math.Float64bits(a.WriteMBs()) != math.Float64bits(b.WriteMBs()) {
					t.Errorf("reference=%v par=%d job %q: write %v (tasks) vs %v (shim)",
						reference, par, a.Label, a.WriteMBs(), b.WriteMBs())
				}
				if math.Float64bits(a.IOR.Read.Mean()) != math.Float64bits(b.IOR.Read.Mean()) {
					t.Errorf("reference=%v par=%d job %q: read %v (tasks) vs %v (shim)",
						reference, par, a.Label, a.IOR.Read.Mean(), b.IOR.Read.Mean())
				}
				if !reflect.DeepEqual(a.IOR.LayoutOSTs, b.IOR.LayoutOSTs) {
					t.Errorf("reference=%v par=%d job %q: OST layouts diverged",
						reference, par, a.Label)
				}
			}
			// The full flow.Stats struct: a single diverging solve, link
			// visit, or heap operation anywhere in the run fails this.
			if tasks.Solver != shim.Solver {
				t.Errorf("reference=%v par=%d: solver counters diverged:\ntasks %+v\nshim  %+v",
					reference, par, tasks.Solver, shim.Solver)
			}
		}
	}
}

// TestDispatchCancelDrainsTasks: a task-mode run cancelled mid-flight must
// surface ctx.Err() and leave nothing behind — inline tasks retire in
// Engine.Drain without any goroutine to unwind, so the goroutine count
// returns to its baseline just as the shim's unwind path guarantees.
func TestDispatchCancelDrainsTasks(t *testing.T) {
	plat := cluster.Cab()
	sc := dispatchScenario()
	full, err := RunScenario(plat, sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan <= 2 {
		t.Fatalf("scenario too short (%v s) to cancel mid-run", full.Makespan)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	goroutines := runtime.NumGoroutine()
	var stoppedAt float64
	res, err := RunScenarioWith(plat, sc, RunOptions{Ctx: ctx},
		func(sys *lustre.System) {
			sys.Engine().Schedule(1, func() {
				cancel()
				stoppedAt = sys.Engine().Now()
			})
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a partial result")
	}
	if stoppedAt == 0 {
		t.Error("cancel event never fired: engine did not reach t=1")
	}
	// Task mode parks no goroutines, but the solver pool and runtime still
	// reap asynchronously — poll briefly like the sharded shim test does.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutines {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled task-mode run leaked goroutines: %d before, %d after",
				goroutines, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
