package mpi

import (
	"math"
	"sync/atomic"
	"testing"

	"pfsim/internal/sim"
)

func TestWorldGeometry(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 64, 16, 10)
	if w.Size() != 64 {
		t.Errorf("size = %d", w.Size())
	}
	if w.NodeOf(0) != 10 || w.NodeOf(15) != 10 || w.NodeOf(16) != 11 || w.NodeOf(63) != 13 {
		t.Errorf("node mapping wrong: %d %d %d %d",
			w.NodeOf(0), w.NodeOf(15), w.NodeOf(16), w.NodeOf(63))
	}
	if w.Nodes() != 4 {
		t.Errorf("nodes = %d, want 4", w.Nodes())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewWorld(sim.NewEngine(), 0, 16, 0)
}

func TestLaunchAndDone(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 8, 4, 0)
	var ran int32
	w.Launch(func(r *Rank) {
		r.Proc().Sleep(float64(r.ID()))
		atomic.AddInt32(&ran, 1)
	})
	finished := false
	eng.Spawn("watcher", func(p *sim.Proc) {
		p.Wait(w.Done())
		finished = true
		if p.Now() != 7 {
			t.Errorf("done at %v, want 7 (slowest rank)", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 8 || !finished {
		t.Errorf("ran=%d finished=%v", ran, finished)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 16, 16, 0)
	var after []float64
	w.Launch(func(r *Rank) {
		r.Proc().Sleep(float64(r.ID()) * 0.1) // staggered arrivals
		w.Comm().Barrier(r)
		after = append(after, r.Proc().Now())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1.5 + w.CollectiveLatency*4 // slowest arrival + log2(16) stages
	for _, tm := range after {
		if math.Abs(tm-want) > 1e-9 {
			t.Errorf("rank released at %v, want %v", tm, want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 10, 16, 0)
	w.Launch(func(r *Rank) {
		v := float64(r.ID())
		if got := w.Comm().AllreduceMin(r, v); got != 0 {
			t.Errorf("min = %v", got)
		}
		if got := w.Comm().AllreduceMax(r, v); got != 9 {
			t.Errorf("max = %v", got)
		}
		if got := w.Comm().AllreduceSum(r, v); got != 45 {
			t.Errorf("sum = %v", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherOrder(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 5, 16, 0)
	w.Launch(func(r *Rank) {
		got := w.Comm().AllGather(r, float64(r.ID()*r.ID()))
		for i, v := range got {
			if v != float64(i*i) {
				t.Errorf("gather[%d] = %v", i, v)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByColor(t *testing.T) {
	// The Figure 2 benchmark splits a world into per-file communicators.
	eng := sim.NewEngine()
	w := NewWorld(eng, 12, 16, 0)
	w.Launch(func(r *Rank) {
		color := r.ID() % 3
		sub := w.Comm().Split(r, color, r.ID())
		if sub.Size() != 4 {
			t.Errorf("subcomm size = %d, want 4", sub.Size())
		}
		if sub.RankOf(r) != r.ID()/3 {
			t.Errorf("world %d: sub rank = %d, want %d", r.ID(), sub.RankOf(r), r.ID()/3)
		}
		// Collectives work within the split comm.
		if got := sub.AllreduceSum(r, 1); got != 4 {
			t.Errorf("sub sum = %v", got)
		}
		// Members share a color.
		for _, wr := range sub.WorldRanks() {
			if wr%3 != color {
				t.Errorf("world %d in wrong color group", wr)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 4, 16, 0)
	w.Launch(func(r *Rank) {
		// Reverse ordering by key: highest world rank becomes sub rank 0.
		sub := w.Comm().Split(r, 0, -r.ID())
		if got, want := sub.RankOf(r), 3-r.ID(); got != want {
			t.Errorf("world %d: sub rank = %d, want %d", r.ID(), got, want)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 1, 16, 0)
	w.Launch(func(r *Rank) {
		w.Comm().Barrier(r)
		if got := w.Comm().AllreduceMax(r, 7); got != 7 {
			t.Errorf("solo max = %v", got)
		}
		sub := w.Comm().Split(r, 5, 0)
		if sub.Size() != 1 {
			t.Errorf("solo split size = %d", sub.Size())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 {
		t.Errorf("single-rank collectives should be free, t=%v", eng.Now())
	}
}

func TestForeignRankPanics(t *testing.T) {
	eng := sim.NewEngine()
	w1 := NewWorld(eng, 2, 16, 0)
	w2 := NewWorld(eng, 2, 16, 10)
	w1.Launch(func(r *Rank) {
		if r.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("want panic for foreign-comm collective")
				}
			}()
			w2.Comm().Barrier(r) // wrong comm
		}
	})
	w2.Launch(func(r *Rank) {})
	_ = eng.Run() // the panic is recovered inside the rank body
}

func TestRepeatedCollectivesMatchInOrder(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 6, 16, 0)
	w.Launch(func(r *Rank) {
		for i := 0; i < 20; i++ {
			if got := w.Comm().AllreduceSum(r, float64(i)); got != float64(6*i) {
				t.Errorf("iteration %d: sum = %v", i, got)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRankAccessors(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, 2, 1, 5)
	w.Launch(func(r *Rank) {
		if r.World() != w {
			t.Error("World() mismatch")
		}
		if r.Node() != 5+r.ID() {
			t.Errorf("rank %d on node %d", r.ID(), r.Node())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Comm().Label(); got != "world" {
		t.Errorf("label = %q", got)
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	// Property: for arbitrary color assignments, the split communicators
	// partition the world — every rank lands in exactly one subcomm, all
	// members share its color, and comm ranks are ordered by key.
	for seed := 0; seed < 8; seed++ {
		size := 5 + seed*3
		colors := make([]int, size)
		keys := make([]int, size)
		for i := range colors {
			colors[i] = (i*7 + seed) % 3
			keys[i] = (size - i) * ((seed % 2) + 1)
		}
		eng := sim.NewEngine()
		w := NewWorld(eng, size, 16, 0)
		membership := make([]*Comm, size)
		w.Launch(func(r *Rank) {
			sub := w.Comm().Split(r, colors[r.ID()], keys[r.ID()])
			membership[r.ID()] = sub
			// Members agree on color.
			for _, wr := range sub.WorldRanks() {
				if colors[wr] != colors[r.ID()] {
					t.Errorf("seed %d: world %d grouped with wrong color", seed, wr)
				}
			}
			// Comm order sorted by (key, world rank).
			ranks := sub.WorldRanks()
			for i := 1; i < len(ranks); i++ {
				a, b := ranks[i-1], ranks[i]
				if keys[a] > keys[b] || (keys[a] == keys[b] && a > b) {
					t.Errorf("seed %d: comm order violates keys: %d before %d", seed, a, b)
				}
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// Partition: total membership equals world size exactly once.
		total := 0
		seen := map[*Comm]bool{}
		for _, c := range membership {
			if c == nil {
				t.Fatalf("seed %d: rank missing subcomm", seed)
			}
			if !seen[c] {
				seen[c] = true
				total += c.Size()
			}
		}
		if total != size {
			t.Errorf("seed %d: subcomms cover %d of %d ranks", seed, total, size)
		}
	}
}
