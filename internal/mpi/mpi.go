// Package mpi provides a deterministic message-passing abstraction over the
// simulation engine: a world of ranks (one simulated process each, mapped
// to compute nodes like MPI ranks on Cab — CoresPerNode ranks per node),
// communicators with barrier/reduction/gather collectives, and
// communicator splitting. Collective calls must be made by every rank of a
// communicator in the same order, mirroring MPI semantics. Collectives
// charge a logarithmic latency model.
package mpi

import (
	"fmt"
	"math"
	"sort"

	"pfsim/internal/sim"
)

// DefaultCollectiveLatency is the per-tree-stage latency charged by
// collective operations (seconds); roughly an InfiniBand message latency.
const DefaultCollectiveLatency = 2e-6

// World is a set of ranks executing a common body.
type World struct {
	eng    *sim.Engine
	size   int
	nodeOf []int
	// CollectiveLatency is the per-stage latency of collective operations.
	CollectiveLatency float64

	world *Comm
	done  *sim.Signal
	left  int
}

// NewWorld creates a world of size ranks packed coresPerNode-to-a-node
// starting at firstNode. Jobs in multi-job experiments use disjoint node
// ranges.
func NewWorld(eng *sim.Engine, size, coresPerNode, firstNode int) *World {
	if size <= 0 || coresPerNode <= 0 {
		panic(fmt.Sprintf("mpi: bad world geometry size=%d cores=%d", size, coresPerNode))
	}
	w := &World{
		eng:               eng,
		size:              size,
		nodeOf:            make([]int, size),
		CollectiveLatency: DefaultCollectiveLatency,
		done:              eng.NewSignal("world-done"),
		left:              size,
	}
	for r := 0; r < size; r++ {
		w.nodeOf[r] = firstNode + r/coresPerNode
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	w.world = newComm(w, "world", ranks)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.world }

// NodeOf returns the compute node hosting a world rank.
func (w *World) NodeOf(rank int) int { return w.nodeOf[rank] }

// Nodes returns the number of distinct nodes the world spans.
func (w *World) Nodes() int {
	return w.nodeOf[w.size-1] - w.nodeOf[0] + 1
}

// Done fires once every rank's body has returned.
func (w *World) Done() *sim.Signal { return w.done }

// Launch starts every rank at the current virtual time. Run the engine to
// execute them; Done fires when all bodies return.
func (w *World) Launch(body func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		rank := &Rank{world: w, id: i}
		w.eng.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			rank.proc = p
			body(rank)
			w.left--
			if w.left == 0 {
				w.done.Fire()
			}
		})
	}
}

// Rank is one simulated MPI process.
type Rank struct {
	world *World
	id    int
	proc  *sim.Proc
}

// ID returns the world rank number.
func (r *Rank) ID() int { return r.id }

// Node returns the hosting compute node.
func (r *Rank) Node() int { return r.world.nodeOf[r.id] }

// Proc returns the underlying simulation process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// World returns the rank's world.
func (r *Rank) World() *World { return r.world }

// Comm is a communicator over a subset of world ranks.
type Comm struct {
	world *World
	label string
	ranks []int       // world rank ids, comm-rank order
	index map[int]int // world rank → comm rank

	seq     map[int]int // world rank → collective calls issued
	pending map[int]*rendezvous
}

func newComm(w *World, label string, ranks []int) *Comm {
	c := &Comm{
		world:   w,
		label:   label,
		ranks:   ranks,
		index:   make(map[int]int, len(ranks)),
		seq:     make(map[int]int, len(ranks)),
		pending: make(map[int]*rendezvous),
	}
	for i, r := range ranks {
		c.index[r] = i
	}
	return c
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// Label returns the communicator's diagnostic name.
func (c *Comm) Label() string { return c.label }

// RankOf returns r's rank within the communicator, or -1 if not a member.
func (c *Comm) RankOf(r *Rank) int {
	if i, ok := c.index[r.id]; ok {
		return i
	}
	return -1
}

// WorldRanks returns the member world ranks in comm order.
func (c *Comm) WorldRanks() []int {
	out := make([]int, len(c.ranks))
	copy(out, c.ranks)
	return out
}

// NodeOfWorldRank returns the compute node hosting a member world rank.
func (c *Comm) NodeOfWorldRank(wr int) int { return c.world.nodeOf[wr] }

// rendezvous matches one collective call across the communicator.
type rendezvous struct {
	arrived int
	sig     *sim.Signal
	vals    map[int]float64
	result  any
}

// collective is the common engine for synchronising operations: every rank
// contributes a value; the last arriver computes the result via finalize
// (receiving contributions keyed by world rank), pays the tree latency, and
// releases the others.
func (c *Comm) collective(r *Rank, val float64, finalize func(map[int]float64) any) any {
	if c.RankOf(r) < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %q", r.id, c.label))
	}
	idx := c.seq[r.id]
	c.seq[r.id]++
	rv := c.pending[idx]
	if rv == nil {
		rv = &rendezvous{
			sig:  c.world.eng.NewSignal(fmt.Sprintf("%s-coll-%d", c.label, idx)),
			vals: make(map[int]float64, len(c.ranks)),
		}
		c.pending[idx] = rv
	}
	rv.vals[r.id] = val
	rv.arrived++
	if rv.arrived < len(c.ranks) {
		r.proc.Wait(rv.sig)
		return rv.result
	}
	delete(c.pending, idx)
	rv.result = finalize(rv.vals)
	if lat := c.latency(); lat > 0 {
		r.proc.Sleep(lat)
	}
	rv.sig.Fire()
	return rv.result
}

func (c *Comm) latency() float64 {
	n := len(c.ranks)
	if n <= 1 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(n)))
	return c.world.CollectiveLatency * stages
}

// Barrier blocks until every comm member arrives.
func (c *Comm) Barrier(r *Rank) {
	c.collective(r, 0, func(map[int]float64) any { return nil })
}

// AllreduceMin returns the minimum contribution across the communicator.
func (c *Comm) AllreduceMin(r *Rank, v float64) float64 {
	return c.collective(r, v, func(vals map[int]float64) any {
		min := math.Inf(1)
		for _, x := range vals {
			if x < min {
				min = x
			}
		}
		return min
	}).(float64)
}

// AllreduceMax returns the maximum contribution across the communicator.
func (c *Comm) AllreduceMax(r *Rank, v float64) float64 {
	return c.collective(r, v, func(vals map[int]float64) any {
		max := math.Inf(-1)
		for _, x := range vals {
			if x > max {
				max = x
			}
		}
		return max
	}).(float64)
}

// AllreduceSum returns the sum of contributions across the communicator.
func (c *Comm) AllreduceSum(r *Rank, v float64) float64 {
	return c.collective(r, v, func(vals map[int]float64) any {
		// Sum in world-rank order for bit-exact determinism.
		keys := make([]int, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		sum := 0.0
		for _, k := range keys {
			sum += vals[k]
		}
		return sum
	}).(float64)
}

// AllGather returns every rank's contribution in comm-rank order.
func (c *Comm) AllGather(r *Rank, v float64) []float64 {
	return c.collective(r, v, func(vals map[int]float64) any {
		out := make([]float64, len(c.ranks))
		for i, wr := range c.ranks {
			out[i] = vals[wr]
		}
		return out
	}).([]float64)
}

// Split partitions the communicator by color, ordering each new
// communicator by (key, world rank) — MPI_Comm_split semantics. Every
// member must call Split; each receives its sub-communicator.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	// Pack color/key into the float contribution losslessly (both are
	// small integers in practice; guard anyway).
	if color < 0 || color > 1<<20 || key < -(1<<20) || key > 1<<20 {
		panic("mpi: Split color/key out of supported range")
	}
	packed := float64(color)*(1<<21) + float64(key+(1<<20))
	result := c.collective(r, packed, func(vals map[int]float64) any {
		type member struct{ color, key, world int }
		members := make([]member, 0, len(vals))
		for wr, pv := range vals {
			col := int(pv / (1 << 21))
			k := int(pv-float64(col)*(1<<21)) - (1 << 20)
			members = append(members, member{col, k, wr})
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].color != members[j].color {
				return members[i].color < members[j].color
			}
			if members[i].key != members[j].key {
				return members[i].key < members[j].key
			}
			return members[i].world < members[j].world
		})
		comms := make(map[int]*Comm)
		byColor := make(map[int][]int)
		for _, m := range members {
			byColor[m.color] = append(byColor[m.color], m.world)
		}
		colors := make([]int, 0, len(byColor))
		for col := range byColor {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		for _, col := range colors {
			sub := newComm(c.world, fmt.Sprintf("%s/c%d", c.label, col), byColor[col])
			for _, wr := range byColor[col] {
				comms[wr] = sub
			}
		}
		return comms
	})
	return result.(map[int]*Comm)[r.id]
}
