// Package mpi provides a deterministic message-passing abstraction over the
// simulation engine: a world of ranks (one simulated process each, mapped
// to compute nodes like MPI ranks on Cab — CoresPerNode ranks per node),
// communicators with barrier/reduction/gather collectives, and
// communicator splitting. Collective calls must be made by every rank of a
// communicator in the same order, mirroring MPI semantics. Collectives
// charge a logarithmic latency model.
package mpi

import (
	"fmt"
	"math"
	"sort"

	"pfsim/internal/sim"
)

// DefaultCollectiveLatency is the per-tree-stage latency charged by
// collective operations (seconds); roughly an InfiniBand message latency.
const DefaultCollectiveLatency = 2e-6

// World is a set of ranks executing a common body.
type World struct {
	eng    *sim.Engine
	size   int
	nodeOf []int
	// CollectiveLatency is the per-stage latency of collective operations.
	CollectiveLatency float64

	world *Comm
	done  *sim.Signal
	left  int
}

// NewWorld creates a world of size ranks packed coresPerNode-to-a-node
// starting at firstNode. Jobs in multi-job experiments use disjoint node
// ranges.
func NewWorld(eng *sim.Engine, size, coresPerNode, firstNode int) *World {
	if size <= 0 || coresPerNode <= 0 {
		panic(fmt.Sprintf("mpi: bad world geometry size=%d cores=%d", size, coresPerNode))
	}
	w := &World{
		eng:               eng,
		size:              size,
		nodeOf:            make([]int, size),
		CollectiveLatency: DefaultCollectiveLatency,
		done:              eng.NewSignal("world-done"),
		left:              size,
	}
	for r := 0; r < size; r++ {
		w.nodeOf[r] = firstNode + r/coresPerNode
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	w.world = newComm(w, "world", ranks)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.world }

// NodeOf returns the compute node hosting a world rank.
func (w *World) NodeOf(rank int) int { return w.nodeOf[rank] }

// Nodes returns the number of distinct nodes the world spans.
func (w *World) Nodes() int {
	return w.nodeOf[w.size-1] - w.nodeOf[0] + 1
}

// Done fires once every rank's body has returned.
func (w *World) Done() *sim.Signal { return w.done }

// Launch starts every rank at the current virtual time, one goroutine-
// backed process each (the compatibility shim — see LaunchTasks for the
// inline-dispatch form). Run the engine to execute them; Done fires when
// all bodies return.
//
//pfsim:taskctxok audited shim launcher: rank bodies escape to spawned shim goroutines, not the event loop
func (w *World) Launch(body func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		rank := &Rank{world: w, id: i}
		w.eng.SpawnIndexed(0, "rank", i, func(p *sim.Proc) {
			rank.proc = p
			body(rank)
			w.left--
			if w.left == 0 {
				w.done.Fire()
			}
		})
	}
}

// LaunchTasks starts every rank as an inline engine task at the current
// virtual time — the goroutine-free counterpart of Launch. The body is
// written in continuation-passing style against the rank's Task and the
// K-suffixed collectives, and must arrange for done to be called exactly
// once when the rank's workload is complete. Done fires when every rank
// has finished; both launchers map onto identical engine scheduling, so a
// workload ported between them is byte-identical.
//
//pfsim:taskctx
func (w *World) LaunchTasks(body func(r *Rank, done func())) {
	for i := 0; i < w.size; i++ {
		rank := &Rank{world: w, id: i}
		rank.task = w.eng.StartTask(0, "rank", i, func(*sim.Task) {
			body(rank, rank.finish)
		})
	}
}

// Rank is one simulated MPI process. Exactly one of proc/task is set,
// depending on which launcher started the world.
type Rank struct {
	world *World
	id    int
	proc  *sim.Proc
	task  *sim.Task
}

// ID returns the world rank number.
func (r *Rank) ID() int { return r.id }

// Node returns the hosting compute node.
func (r *Rank) Node() int { return r.world.nodeOf[r.id] }

// Proc returns the underlying simulation process (nil when the world was
// started with LaunchTasks).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Task returns the underlying inline task (nil when the world was started
// with Launch).
func (r *Rank) Task() *sim.Task { return r.task }

// finish retires a task-mode rank; passed to the LaunchTasks body as its
// done continuation.
func (r *Rank) finish() {
	r.task.Finish()
	r.world.left--
	if r.world.left == 0 {
		r.world.done.Fire()
	}
}

// World returns the rank's world.
func (r *Rank) World() *World { return r.world }

// Comm is a communicator over a subset of world ranks.
type Comm struct {
	world *World
	label string
	ranks []int       // world rank ids, comm-rank order
	index map[int]int // world rank → comm rank

	seq     map[int]int // world rank → collective calls issued
	pending map[int]*rendezvous
}

func newComm(w *World, label string, ranks []int) *Comm {
	c := &Comm{
		world:   w,
		label:   label,
		ranks:   ranks,
		index:   make(map[int]int, len(ranks)),
		seq:     make(map[int]int, len(ranks)),
		pending: make(map[int]*rendezvous),
	}
	for i, r := range ranks {
		c.index[r] = i
	}
	return c
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// Label returns the communicator's diagnostic name.
func (c *Comm) Label() string { return c.label }

// RankOf returns r's rank within the communicator, or -1 if not a member.
func (c *Comm) RankOf(r *Rank) int {
	if i, ok := c.index[r.id]; ok {
		return i
	}
	return -1
}

// WorldRanks returns the member world ranks in comm order.
func (c *Comm) WorldRanks() []int {
	out := make([]int, len(c.ranks))
	copy(out, c.ranks)
	return out
}

// NodeOfWorldRank returns the compute node hosting a member world rank.
func (c *Comm) NodeOfWorldRank(wr int) int { return c.world.nodeOf[wr] }

// rendezvous matches one collective call across the communicator.
type rendezvous struct {
	arrived int
	sig     *sim.Signal
	vals    map[int]float64
	result  any
}

// arrive registers one rank's contribution to its next collective and
// reports whether this rank completed the rendezvous (it is then the
// "last arriver" responsible for finalizing and releasing the others).
func (c *Comm) arrive(r *Rank, val float64) (rv *rendezvous, last bool) {
	if c.RankOf(r) < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %q", r.id, c.label))
	}
	idx := c.seq[r.id]
	c.seq[r.id]++
	rv = c.pending[idx]
	if rv == nil {
		rv = &rendezvous{
			sig:  c.world.eng.NewSignal(fmt.Sprintf("%s-coll-%d", c.label, idx)),
			vals: make(map[int]float64, len(c.ranks)),
		}
		c.pending[idx] = rv
	}
	rv.vals[r.id] = val
	rv.arrived++
	if rv.arrived < len(c.ranks) {
		return rv, false
	}
	delete(c.pending, idx)
	return rv, true
}

// collective is the common engine for synchronising operations: every rank
// contributes a value; the last arriver computes the result via finalize
// (receiving contributions keyed by world rank), pays the tree latency, and
// releases the others.
func (c *Comm) collective(r *Rank, val float64, finalize func(map[int]float64) any) any {
	rv, last := c.arrive(r, val)
	if !last {
		r.proc.Wait(rv.sig)
		return rv.result
	}
	rv.result = finalize(rv.vals)
	if lat := c.latency(); lat > 0 {
		r.proc.Sleep(lat)
	}
	rv.sig.Fire()
	return rv.result
}

// collectiveK is collective for task-mode ranks: the result is delivered
// to the continuation k instead of returned. It performs the same
// rendezvous arrival, the same latency sleep (one scheduled event), and
// the same release order — the last arriver fires the signal and then
// continues inline, exactly as a resumed process runs its body before the
// woken waiters' events fire — so both forms are byte-identical.
func (c *Comm) collectiveK(r *Rank, val float64, finalize func(map[int]float64) any, k func(any)) {
	rv, last := c.arrive(r, val)
	if !last {
		rv.sig.Await(r.task, func() { k(rv.result) })
		return
	}
	rv.result = finalize(rv.vals)
	release := func() {
		rv.sig.Fire()
		k(rv.result)
	}
	if lat := c.latency(); lat > 0 {
		r.task.Sleep(lat, release)
		return
	}
	release()
}

func (c *Comm) latency() float64 {
	n := len(c.ranks)
	if n <= 1 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(n)))
	return c.world.CollectiveLatency * stages
}

// The finalizers are shared between the blocking collectives and their
// K-suffixed task forms, so the two dispatch modes cannot drift apart.

func finalizeBarrier(map[int]float64) any { return nil }

func finalizeMin(vals map[int]float64) any {
	min := math.Inf(1)
	for _, x := range vals {
		if x < min {
			min = x
		}
	}
	return min
}

func finalizeMax(vals map[int]float64) any {
	max := math.Inf(-1)
	for _, x := range vals {
		if x > max {
			max = x
		}
	}
	return max
}

func finalizeSum(vals map[int]float64) any {
	// Sum in world-rank order for bit-exact determinism.
	keys := make([]int, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += vals[k]
	}
	return sum
}

func (c *Comm) finalizeGather(vals map[int]float64) any {
	out := make([]float64, len(c.ranks))
	for i, wr := range c.ranks {
		out[i] = vals[wr]
	}
	return out
}

// Barrier blocks until every comm member arrives.
func (c *Comm) Barrier(r *Rank) {
	c.collective(r, 0, finalizeBarrier)
}

// BarrierK runs k once every comm member has arrived (task form).
func (c *Comm) BarrierK(r *Rank, k func()) {
	c.collectiveK(r, 0, finalizeBarrier, func(any) { k() })
}

// AllreduceMin returns the minimum contribution across the communicator.
func (c *Comm) AllreduceMin(r *Rank, v float64) float64 {
	return c.collective(r, v, finalizeMin).(float64)
}

// AllreduceMinK delivers the minimum contribution to k (task form).
func (c *Comm) AllreduceMinK(r *Rank, v float64, k func(float64)) {
	c.collectiveK(r, v, finalizeMin, func(res any) { k(res.(float64)) })
}

// AllreduceMax returns the maximum contribution across the communicator.
func (c *Comm) AllreduceMax(r *Rank, v float64) float64 {
	return c.collective(r, v, finalizeMax).(float64)
}

// AllreduceMaxK delivers the maximum contribution to k (task form).
func (c *Comm) AllreduceMaxK(r *Rank, v float64, k func(float64)) {
	c.collectiveK(r, v, finalizeMax, func(res any) { k(res.(float64)) })
}

// AllreduceSum returns the sum of contributions across the communicator.
func (c *Comm) AllreduceSum(r *Rank, v float64) float64 {
	return c.collective(r, v, finalizeSum).(float64)
}

// AllreduceSumK delivers the sum of contributions to k (task form).
func (c *Comm) AllreduceSumK(r *Rank, v float64, k func(float64)) {
	c.collectiveK(r, v, finalizeSum, func(res any) { k(res.(float64)) })
}

// AllGather returns every rank's contribution in comm-rank order.
func (c *Comm) AllGather(r *Rank, v float64) []float64 {
	return c.collective(r, v, c.finalizeGather).([]float64)
}

// AllGatherK delivers every rank's contribution in comm-rank order to k
// (task form).
func (c *Comm) AllGatherK(r *Rank, v float64, k func([]float64)) {
	c.collectiveK(r, v, c.finalizeGather, func(res any) { k(res.([]float64)) })
}

// packSplit encodes color/key into the float contribution losslessly
// (both are small integers in practice; guard anyway).
func packSplit(color, key int) float64 {
	if color < 0 || color > 1<<20 || key < -(1<<20) || key > 1<<20 {
		panic("mpi: Split color/key out of supported range")
	}
	return float64(color)*(1<<21) + float64(key+(1<<20))
}

func (c *Comm) finalizeSplit(vals map[int]float64) any {
	type member struct{ color, key, world int }
	members := make([]member, 0, len(vals))
	for wr, pv := range vals {
		col := int(pv / (1 << 21))
		k := int(pv-float64(col)*(1<<21)) - (1 << 20)
		members = append(members, member{col, k, wr})
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].color != members[j].color {
			return members[i].color < members[j].color
		}
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].world < members[j].world
	})
	comms := make(map[int]*Comm)
	byColor := make(map[int][]int)
	for _, m := range members {
		byColor[m.color] = append(byColor[m.color], m.world)
	}
	colors := make([]int, 0, len(byColor))
	for col := range byColor {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	for _, col := range colors {
		sub := newComm(c.world, fmt.Sprintf("%s/c%d", c.label, col), byColor[col])
		for _, wr := range byColor[col] {
			comms[wr] = sub
		}
	}
	return comms
}

// Split partitions the communicator by color, ordering each new
// communicator by (key, world rank) — MPI_Comm_split semantics. Every
// member must call Split; each receives its sub-communicator.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	result := c.collective(r, packSplit(color, key), c.finalizeSplit)
	return result.(map[int]*Comm)[r.id]
}

// SplitK delivers the rank's sub-communicator to k (task form).
func (c *Comm) SplitK(r *Rank, color, key int, k func(*Comm)) {
	c.collectiveK(r, packSplit(color, key), c.finalizeSplit, func(res any) {
		k(res.(map[int]*Comm)[r.id])
	})
}
