// Package pfsim is a simulation toolkit for quantifying the effects of
// contention on parallel file systems, reproducing Wright & Jarvis
// (IPDPSW 2015). It bundles:
//
//   - the paper's contention metrics (Equations 1-6): expected OSTs in
//     use, total demand and per-OST load for concurrent striped jobs and
//     for PLFS-style per-rank logging;
//   - a calibrated discrete-event simulator of the Cab/lscratchc Lustre
//     installation (MDS allocation, OST service classes, collective
//     buffering, PLFS containers) able to regenerate every table and
//     figure of the paper;
//   - an IOR-compatible workload engine, an exhaustive configuration
//     sweep, a genetic autotuner, and QoS/capacity-planning helpers.
//
// The quickest entry points:
//
//	plat := pfsim.Cab()
//	res, err := pfsim.RunIOR(plat, pfsim.TunedIOR(1024))
//	fmt.Println(res.Write.Mean()) // ≈15.6 GB/s
//
//	rows := pfsim.LoadTable(pfsim.Lscratchc(), 160, 10) // Table III
//
// Every simulation is deterministic for a given platform seed.
package pfsim

import (
	"pfsim/internal/cluster"
	"pfsim/internal/core"
	"pfsim/internal/experiments"
	"pfsim/internal/ior"
	"pfsim/internal/mpiio"
	"pfsim/internal/stats"
	"pfsim/internal/sweep"
	"pfsim/internal/workload"
)

// Platform describes a simulated machine; see the fields of
// cluster.Platform for the calibrated model constants.
type Platform = cluster.Platform

// Cab returns the paper's testbed: the Cab cluster with the lscratchc
// Lustre file system (480 OSTs, 32 OSSs, Lustre 2.4.2 limits).
func Cab() *Platform { return cluster.Cab() }

// Stampede returns the Stampede I/O configuration analysed in Table VI.
func Stampede() *Platform { return cluster.Stampede() }

// FileSystem is the OST population view used by the analytic metrics.
type FileSystem = core.FileSystem

// Lscratchc returns the 480-OST file system of the paper.
func Lscratchc() FileSystem { return core.Lscratchc() }

// StampedeFS returns the 160-OST file-system view of Stampede analysed in
// Table VI.
func StampedeFS() FileSystem { return core.Stampede() }

// LoadRow is one row of the paper's load tables.
type LoadRow = core.LoadRow

// QoS bundles availability metrics for concurrent striped jobs.
type QoS = core.QoS

// Dinuse returns the expected number of OSTs in use when n jobs each
// stripe over r of dtotal OSTs (Equation 2).
func Dinuse(dtotal, r, n int) float64 { return core.Dinuse(dtotal, r, n) }

// DinuseRecurrence evaluates Equation 1 for heterogeneous requests.
func DinuseRecurrence(dtotal int, requests []int) []float64 {
	return core.DinuseRecurrence(dtotal, requests)
}

// Dload returns the expected average load of in-use OSTs (Equation 4).
func Dload(dtotal, r, n int) float64 { return core.Dload(dtotal, r, n) }

// PLFSLoad returns the OST load induced by an n-rank PLFS application
// (Equation 6).
func PLFSLoad(dtotal, ranks int) float64 { return core.PLFSLoad(dtotal, ranks) }

// PLFSDinuse returns the OSTs used by an n-rank PLFS application
// (Equation 5).
func PLFSDinuse(dtotal, ranks int) float64 { return core.PLFSDinuse(dtotal, ranks) }

// LoadTable computes the rows of Tables III/IV/VI for 1..maxJobs jobs.
func LoadTable(fs FileSystem, r, maxJobs int) []LoadRow {
	return core.LoadTable(fs, r, maxJobs)
}

// Availability computes QoS metrics for n jobs of r stripes on fs.
func Availability(fs FileSystem, r, n int) QoS { return core.Availability(fs, r, n) }

// RecommendRequest returns the smallest candidate stripe request that
// keeps the predicted load at or below maxLoad with n concurrent jobs.
func RecommendRequest(fs FileSystem, n int, maxLoad float64, candidates []int) int {
	return core.RecommendRequest(fs, n, maxLoad, candidates)
}

// MinOSTsForLoad sizes a file system: the fewest OSTs keeping n jobs of r
// stripes at or below maxLoad (the paper's purchasing question).
func MinOSTsForLoad(r, n int, maxLoad float64) int {
	return core.MinOSTsForLoad(r, n, maxLoad)
}

// PLFSBreakEvenRanks returns the PLFS rank count at which average OST
// load exceeds maxLoad on a dtotal-OST system.
func PLFSBreakEvenRanks(dtotal int, maxLoad float64) int {
	return core.PLFSBreakEvenRanks(dtotal, maxLoad)
}

// Driver selects the simulated MPI-IO driver.
type Driver = mpiio.Driver

// Drivers, as in ROMIO.
const (
	DriverUFS    = mpiio.DriverUFS
	DriverLustre = mpiio.DriverLustre
	DriverPLFS   = mpiio.DriverPLFS
)

// Hints are the MPI-IO tuning hints.
type Hints = mpiio.Hints

// IORConfig describes one IOR execution.
type IORConfig = ior.Config

// IORResult aggregates an execution's repetitions.
type IORResult = ior.Result

// PaperIOR returns the Table II workload for the given task count
// (4 MB blocks × 100 segments, 1 MB transfers, write-only, collective).
func PaperIOR(tasks int) IORConfig { return ior.PaperConfig(tasks) }

// TunedIOR returns the Table II workload with the optimal configuration
// found by the paper's sweep (160 stripes × 128 MB).
func TunedIOR(tasks int) IORConfig {
	cfg := ior.PaperConfig(tasks)
	cfg.Hints = ior.TunedHints()
	return cfg
}

// TunedHints returns the paper's optimal hints.
func TunedHints() Hints { return ior.TunedHints() }

// RunIOR executes one IOR configuration on a fresh simulated system. It
// is a thin wrapper over the Scenario/Runner API: a single-job scenario
// run serially, byte-identical to earlier releases.
func RunIOR(plat *Platform, cfg IORConfig) (*IORResult, error) {
	return NewRunner(WithParallelism(1), WithoutSlowdowns()).RunIOR(plat, cfg)
}

// RunContended executes n simultaneous copies of cfg on one simulated
// system (disjoint node ranges), the Section V scenario. It is a thin
// wrapper over Runner.RunContended; use a Runner directly for
// heterogeneous mixes, start times, or slowdown reporting. The Scenario
// engine forks its RNG from the job labels, a different stream than the
// pre-Scenario releases (and than internal/ior.RunContended): per-run
// numbers shift slightly, distributions and every reproduced shape do
// not.
func RunContended(plat *Platform, cfg IORConfig, n int) ([]*IORResult, error) {
	return NewRunner(WithParallelism(1), WithoutSlowdowns()).RunContended(plat, cfg, n)
}

// SweepPoint is one sampled configuration of a parameter search.
type SweepPoint = sweep.Point

// SweepGrid is the result of an exhaustive sweep.
type SweepGrid = sweep.Grid

// SweepOptions configures a sweep run (workload shape; the Runner
// supplies parallelism, context and progress).
type SweepOptions = sweep.Options

// SweepCounts returns the paper's Figure 1 stripe-count axis for a
// platform.
func SweepCounts(plat *Platform) []int { return sweep.CountsUpTo(plat) }

// Autotune performs the exhaustive (count × size) sweep of Section IV and
// returns the optimum. Reps controls repetitions per configuration. It is
// a thin wrapper over Runner.Autotune with one worker per core.
func Autotune(plat *Platform, tasks, reps int) (SweepPoint, error) {
	return NewRunner().Autotune(plat, tasks, reps)
}

// Checkpoint models a periodically checkpointing application.
type Checkpoint = workload.Checkpoint

// Assignment is a realised random OST layout for concurrent jobs.
type Assignment = core.Assignment

// AssignOSTs simulates the MDS assignment policy: n jobs × r random OSTs.
func AssignOSTs(seed uint64, dtotal, r, n int) Assignment {
	return core.Assign(stats.NewRNG(seed), dtotal, r, n)
}

// Experiment regenerates one paper artefact ("figure1" ... "table9") or
// extra ("ablation-aggcap", "ablation-thrash", "extension-ga"). Quick
// trades repetitions for speed.
func Experiment(id string, plat *Platform, quick bool) (*experiments.Outcome, error) {
	run, ok := experiments.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return run(experiments.Options{Plat: plat, Quick: quick})
}

// ExperimentIDs lists the paper artefacts in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExtraExperimentIDs lists ablations and extensions.
func ExtraExperimentIDs() []string { return experiments.ExtraIDs() }

// UnknownExperimentError reports a bad experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "pfsim: unknown experiment " + e.ID
}
