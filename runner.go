package pfsim

import (
	"context"
	"fmt"
	"sync"

	"pfsim/internal/ior"
	"pfsim/internal/pool"
	"pfsim/internal/sweep"
	"pfsim/internal/workload"
)

// Runner executes scenarios, repetitions and sweep grids. Each simulation
// is single-threaded and deterministic, so the Runner fans independent
// simulations across a worker pool: results are byte-identical at any
// parallelism, only wall-clock time changes.
//
// The zero configuration (NewRunner()) uses the platform seed, a
// background context, and one worker per available core.
type Runner struct {
	seed        uint64
	ctx         context.Context
	parallelism int
	progress    func(done, total int)
	slowdowns   bool
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithSeed overrides the platform's RNG seed for every simulation the
// Runner launches (0 keeps the platform seed).
func WithSeed(seed uint64) RunnerOption {
	return func(r *Runner) { r.seed = seed }
}

// WithContext aborts in-flight work when ctx is cancelled; the partial
// result is discarded and the context error returned. Batched calls
// (RunScenarios, Repeat, Sweep) notice the cancellation between
// simulations; the single long runs (RunScenario's contended pass,
// RunSharded) poll the context every few thousand engine events and
// stop the engine mid-run.
func WithContext(ctx context.Context) RunnerOption {
	return func(r *Runner) {
		if ctx != nil {
			r.ctx = ctx
		}
	}
}

// WithParallelism sets the worker-pool width for independent simulations
// (1 = serial; values below one select GOMAXPROCS, the default). The
// single long runs (RunScenario's contended pass, RunSharded) spend the
// same width inside the fluid solver instead, solving independent dirty
// components concurrently — results are byte-identical at any setting,
// only wall-clock time changes.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.parallelism = n }
}

// WithProgress installs a callback invoked after each completed
// simulation unit with (done, total) counts. Calls are serialised and
// arrive in done order. The count is monotonic across every internal
// phase of one Runner call — contended scenario passes and the solo
// baseline pass count into a single combined total, so progress bars
// never jump backwards. The total may grow between phases (baseline
// units are only known once the scenarios have run), but done never
// decreases and never exceeds total.
func WithProgress(fn func(done, total int)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// progressTracker folds the phases of one Runner call into a single
// monotonic (done, total) series. Phases register their unit counts with
// addTotal as they become known; tick reports one completed unit. Safe
// for concurrent use by pool workers.
type progressTracker struct {
	fn    func(done, total int)
	mu    sync.Mutex
	done  int
	total int
}

// newTracker returns a tracker for one Runner call (nil-safe: a Runner
// without WithProgress gets a tracker whose methods are no-ops).
func (r *Runner) newTracker() *progressTracker {
	return &progressTracker{fn: r.progress}
}

// addTotal registers n upcoming units.
func (t *progressTracker) addTotal(n int) {
	if t.fn == nil {
		return
	}
	t.mu.Lock()
	t.total += n
	t.mu.Unlock()
}

// tick reports one completed unit.
func (t *progressTracker) tick() {
	if t.fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.fn(t.done, t.total)
}

// WithoutSlowdowns skips the per-job solo baseline runs, leaving
// ScenarioResult slowdown fields zero. Use it when only contended
// bandwidth matters and the extra simulations are unwelcome.
func WithoutSlowdowns() RunnerOption {
	return func(r *Runner) { r.slowdowns = false }
}

// NewRunner returns a Runner configured by the given options.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{ctx: context.Background(), slowdowns: true}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// runOptions builds the workload options for the Runner's single long
// runs: the pool width becomes the solver's component-solve parallelism
// (there is only one simulation to fan out, so the cores go inside it)
// and the Runner context is polled mid-run. Batched paths deliberately
// do not use this — they spend the width on the pool and keep each
// simulation's solver serial.
func (r *Runner) runOptions() workload.RunOptions {
	return workload.RunOptions{
		Seed:        r.seed,
		Parallelism: pool.Workers(r.parallelism),
		Ctx:         r.ctx,
	}
}

// RunScenario executes the scenario on plat: one deterministic simulation
// in which every job launches at its start time on its node range,
// sharing the metadata server, network and OSTs. Unless WithoutSlowdowns
// is set, one solo baseline per distinct job shape then runs across the
// worker pool and each job's slowdown vs running alone is filled in.
func (r *Runner) RunScenario(plat *Platform, sc Scenario) (*ScenarioResult, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	tracker := r.newTracker()
	tracker.addTotal(1)
	res, err := workload.RunScenarioWith(plat, sc, r.runOptions())
	if err != nil {
		return nil, err
	}
	tracker.tick()
	if !r.slowdowns {
		return res, nil
	}
	if err := r.applySlowdownsAll(plat, []*ScenarioResult{res}, []uint64{r.seed}, tracker); err != nil {
		return nil, err
	}
	return res, nil
}

// runSolo executes one configuration alone via a single-job scenario
// (which reproduces ior.Run exactly); seed 0 selects the platform seed.
func (r *Runner) runSolo(plat *Platform, cfg IORConfig, seed uint64) (*IORResult, error) {
	res, err := workload.RunScenario(plat, Scenario{
		Jobs: []ScenarioJob{{Workload: workload.IORJob{Cfg: cfg}}},
	}, seed)
	if err != nil {
		return nil, err
	}
	return res.Jobs[0].IOR, nil
}

// RunScenarios executes several independent scenarios across the worker
// pool, in input order. Scenario i fails the whole call if it errors.
func (r *Runner) RunScenarios(plat *Platform, scs []Scenario) ([]*ScenarioResult, error) {
	out := make([]*ScenarioResult, len(scs))
	tracker := r.newTracker()
	tracker.addTotal(len(scs))
	err := pool.Run(r.ctx, r.parallelism, len(scs), func(i int) error {
		res, err := workload.RunScenario(plat, scs[i], r.seed)
		if err != nil {
			return err
		}
		out[i] = res
		tracker.tick()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.slowdowns {
		seeds := make([]uint64, len(out))
		for i := range seeds {
			seeds[i] = r.seed
		}
		if err := r.applySlowdownsAll(plat, out, seeds, tracker); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Repeat executes n independent replicas of the scenario across the
// worker pool. Replica i runs with seed base+i (base is the WithSeed
// value, or the platform seed), so each replica redraws OST layouts and
// service jitter: the spread across replicas is the run-to-run variance
// the paper reports as 95% confidence intervals.
func (r *Runner) Repeat(plat *Platform, sc Scenario, n int) ([]*ScenarioResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pfsim: need at least one repetition")
	}
	base := r.seed
	if base == 0 {
		base = plat.Seed
	}
	out := make([]*ScenarioResult, n)
	tracker := r.newTracker()
	tracker.addTotal(n)
	err := pool.Run(r.ctx, r.parallelism, n, func(i int) error {
		res, err := workload.RunScenario(plat, sc, base+uint64(i))
		if err != nil {
			return err
		}
		out[i] = res
		tracker.tick()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.slowdowns {
		seeds := make([]uint64, n)
		for i := range seeds {
			seeds[i] = base + uint64(i)
		}
		if err := r.applySlowdownsAll(plat, out, seeds, tracker); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applySlowdownsAll runs the solo baselines for every result in one flat
// pool pass (result i's baselines use seeds[i]), so the baseline half of
// a batch keeps the same parallel width as the scenario half. Baseline
// units join the caller's progress tracker, continuing its monotonic
// count rather than restarting from zero.
func (r *Runner) applySlowdownsAll(plat *Platform, results []*ScenarioResult, seeds []uint64, tracker *progressTracker) error {
	type unit struct {
		cfg  IORConfig
		seed uint64
	}
	var units []unit
	solos := make([][]ior.Config, len(results))
	for i, res := range results {
		solos[i] = res.SoloConfigs()
		for _, cfg := range solos[i] {
			units = append(units, unit{cfg: cfg, seed: seeds[i]})
		}
	}
	baselines := make([]*ior.Result, len(units))
	tracker.addTotal(len(units))
	err := pool.Run(r.ctx, r.parallelism, len(units), func(k int) error {
		base, err := r.runSolo(plat, units[k].cfg, units[k].seed)
		if err != nil {
			return fmt.Errorf("pfsim: solo baseline for %q: %w", units[k].cfg.Label, err)
		}
		baselines[k] = base
		tracker.tick()
		return nil
	})
	if err != nil {
		return err
	}
	k := 0
	for i, res := range results {
		byCfg := make(map[IORConfig]*IORResult, len(solos[i]))
		for range solos[i] {
			byCfg[units[k].cfg] = baselines[k]
			k++
		}
		res.ApplySolo(byCfg)
	}
	return nil
}

// RunSharded executes several scenarios as independent file systems under
// one engine and one shared fluid solver — the shared-nothing deployment
// shape (many installations, one simulation). Shard link sets are
// disjoint, so the partitioned solver keeps each shard its own component:
// simulation cost per event scales with the touched shard, not the total
// population, and the Runner's parallelism is spent solving the
// components an instant dirties concurrently (byte-identical results at
// any width). A cancelled WithContext context stops the engine mid-run.
// Slowdown baselines are not computed (a shard cannot slow another down
// by construction; per-shard contention is visible in the per-job
// results directly).
func (r *Runner) RunSharded(plat *Platform, shards []Scenario) (*ShardedResult, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	tracker := r.newTracker()
	tracker.addTotal(1)
	res, err := workload.RunShardedWith(plat, shards, r.runOptions())
	if err != nil {
		return nil, err
	}
	tracker.tick()
	return res, nil
}

// RunIOR executes one IOR configuration on a fresh simulated system — the
// single-job scenario. With the default seed this reproduces the classic
// serial path byte for byte.
func (r *Runner) RunIOR(plat *Platform, cfg IORConfig) (*IORResult, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	return r.runSolo(plat, cfg, r.seed)
}

// RunContended executes n simultaneous copies of cfg on one simulated
// system (disjoint node ranges) and returns the per-job results — the
// Section V scenario expressed on the Scenario API.
func (r *Runner) RunContended(plat *Platform, cfg IORConfig, n int) ([]*IORResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pfsim: need at least one job")
	}
	res, err := workload.RunScenario(plat, contendedScenario(cfg, n), r.seed)
	if err != nil {
		return nil, err
	}
	out := make([]*IORResult, len(res.Jobs))
	for i := range res.Jobs {
		out[i] = res.Jobs[i].IOR
	}
	return out, nil
}

// Sweep measures every (stripe count, stripe size) combination for the
// given options across the worker pool — the Section IV exhaustive search
// with free parallel speedup. The grid is byte-identical to a serial
// sweep.
func (r *Runner) Sweep(plat *Platform, counts []int, sizesMB []float64, opt SweepOptions) (*SweepGrid, error) {
	opt.Parallelism = r.parallelism
	opt.Ctx = r.ctx
	if opt.Seed == 0 {
		opt.Seed = r.seed
	}
	if r.progress != nil && opt.Progress == nil {
		opt.Progress = r.progress
	}
	return sweep.Exhaustive(plat, counts, sizesMB, opt)
}

// Autotune performs the exhaustive (count × size) sweep of Section IV on
// the worker pool and returns the optimum. Reps controls repetitions per
// configuration.
func (r *Runner) Autotune(plat *Platform, tasks, reps int) (SweepPoint, error) {
	grid, err := r.Sweep(plat, sweep.CountsUpTo(plat),
		[]float64{1, 32, 64, 128, 256}, SweepOptions{Tasks: tasks, Reps: reps})
	if err != nil {
		return SweepPoint{}, err
	}
	return grid.Best(), nil
}
